// Streaming summary statistics (Welford) used for Monte-Carlo aggregation
// and for distribution sanity checks in tests, plus the compensated
// accumulators every particle-weight reduction in the library must go
// through (enforced by tools/cdpf_lint.py rule `weight-accumulation`).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace cdpf::support {

/// Neumaier-compensated running sum. Distributed weight exchange adds many
/// small per-particle masses to totals that the paper's invariants compare
/// against each other (weight conservation across divide/combine, overheard
/// total vs. global total); a naive += loses low-order bits exactly where
/// those comparisons live, and the compensation keeps the error independent
/// of the summand count and ordering.
class NeumaierSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// The compensated total accumulated so far.
  double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Compensated total of `proj(element)` over a range — the canonical way to
/// sum particle weights (`weight_total(particles, [](auto& p) { return
/// p.weight; })`).
template <typename Range, typename Proj>
double weight_total(const Range& range, Proj proj) {
  NeumaierSum sum;
  for (const auto& element : range) {
    sum.add(proj(element));
  }
  return sum.value();
}

/// Numerically stable running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel Welford merge), enabling
  /// per-worker accumulation followed by a single combine.
  void merge(const RunningStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Population variance; 0 when fewer than two samples were seen.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Unbiased sample variance; 0 when fewer than two samples were seen.
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }
  double sample_stddev() const { return std::sqrt(sample_variance()); }

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cdpf::support

// Tiny command-line flag parser used by the examples and the benchmark
// drivers (the figure benches accept e.g. --densities=5,10,20 --trials=10).
//
// Supported syntax: --name=value, --name value, and bare --flag (boolean).
// Unknown flags are an error so typos do not silently fall back to defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cdpf::support {

class CliArgs {
 public:
  /// Parses argv. Throws cdpf::Error on malformed input (e.g. positional
  /// arguments, which none of our binaries take).
  CliArgs(int argc, const char* const* argv);

  /// Declare a flag so it is recognized; returns its value if present.
  std::optional<std::string> get_string(const std::string& name);
  std::optional<double> get_double(const std::string& name);
  std::optional<long long> get_int(const std::string& name);
  std::optional<bool> get_bool(const std::string& name);
  /// Comma-separated list of doubles ("5,10,15").
  std::optional<std::vector<double>> get_double_list(const std::string& name);
  /// Comma-separated list of strings ("a.json,b.json").
  std::optional<std::vector<std::string>> get_string_list(const std::string& name);

  /// Call after all get_*() declarations: throws cdpf::Error if the command
  /// line contained a flag that was never queried.
  void check_unknown() const;

  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace cdpf::support

// Typed metrics registry: counters, gauges and histograms behind one
// snapshot API, unifying the repo's ad-hoc accounting (wsn::CommStats byte /
// message / reception totals, wsn::EnergyModel joules, iteration and
// estimate counts) into a single named, unit-annotated value space.
//
// Design constraints, in order:
//   * Exactness. Counters are unsigned 64-bit integers with atomic
//     increments, so totals folded from concurrently running Monte-Carlo
//     trials are bit-identical to a serial fold for any worker count —
//     the same determinism contract the batch compute plane makes
//     (DESIGN.md §7), and what lets a metrics snapshot reproduce
//     wsn::CommStats totals exactly.
//   * Thread safety without locks on the update path. add()/set()/observe()
//     are lock-free atomics; only registration and snapshot take the
//     registry mutex (both off the per-iteration path).
//   * Stable handles. Registration returns a dense Id; cells live in a
//     deque so handles and concurrent updates survive later registrations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cdpf::support {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of every registered metric. Snapshots are plain data:
/// diffable (delta()), serializable (to_json()/write_json()) and safe to
/// keep after the registry moves on.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::string unit;
    MetricKind kind = MetricKind::kCounter;
    /// Counter value, or histogram sample count.
    std::uint64_t count = 0;
    /// Gauge value, or histogram sample sum.
    double value = 0.0;
    /// Histogram upper bucket bounds (inclusive); buckets has one extra
    /// terminal bucket for samples above the last bound.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Entry> entries;

  /// Entry by name, or nullptr.
  const Entry* find(std::string_view name) const;

  /// Per-interval difference: counters and histogram counts subtract
  /// (entries of `after` missing from `before` pass through); gauges keep
  /// the `after` value (a gauge is a level, not a flow).
  static MetricsSnapshot delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// Compact JSON object, schema `cdpf-metrics/1`.
  std::string to_json() const;
  /// to_json() to a file; false when the file cannot be written.
  bool write_json(const std::string& path) const;
};

class MetricsRegistry {
 public:
  using Id = std::size_t;

  /// Register (or look up — name is the identity) a monotonic counter.
  Id counter(std::string_view name, std::string_view unit = "");
  /// Register (or look up) a last-value-wins gauge.
  Id gauge(std::string_view name, std::string_view unit = "");
  /// Register (or look up) a histogram with inclusive upper `bounds`
  /// (must be sorted ascending; a terminal overflow bucket is implicit).
  Id histogram(std::string_view name, std::vector<double> bounds,
               std::string_view unit = "");

  /// Counter += delta. Lock-free; exact for any thread interleaving.
  void add(Id id, std::uint64_t delta = 1);
  /// Gauge = value. Lock-free.
  void set(Id id, double value);
  /// Record one histogram sample. Lock-free.
  void observe(Id id, double value);

  MetricsSnapshot snapshot() const;
  /// Zero every value; registrations (names, ids, bounds) survive.
  void reset();

 private:
  struct Cell {
    std::string name;
    std::string unit;
    MetricKind kind = MetricKind::kCounter;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> value_bits{0};  // double payload via bit_cast
    std::vector<double> bounds;
    std::deque<std::atomic<std::uint64_t>> buckets;
  };

  Id get_or_create(std::string_view name, std::string_view unit, MetricKind kind,
                   std::vector<double> bounds);

  mutable std::mutex mutex_;  // registration + snapshot only
  std::deque<Cell> cells_;    // deque: Ids and atomics stable under growth
  std::map<std::string, Id, std::less<>> by_name_;
};

/// The process-wide registry the simulation layer folds run accounting into
/// and the `--metrics` CLI flag snapshots. Library code never resets it;
/// scopes that want a clean window (sim::ObservabilityScope) do.
MetricsRegistry& global_metrics();

}  // namespace cdpf::support

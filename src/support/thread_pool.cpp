#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "support/trace.hpp"

namespace cdpf::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // A few blocks per worker: enough granularity for load balancing when the
  // per-index cost is uneven, while the queue/future overhead stays O(workers)
  // instead of O(count). Correctness never depends on the block shape — every
  // index runs exactly once, and callers that need worker-count-independent
  // results write disjoint per-index slots.
  const std::size_t workers = std::max<std::size_t>(1, threads_.size());
  const std::size_t blocks = std::min(count, workers * 4);
  const std::size_t base = count / blocks;
  const std::size_t extra = count % blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  std::size_t begin = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t end = begin + base + (b < extra ? 1 : 0);
    futures.push_back(submit([&fn, begin, end] {
      CDPF_TRACE_SPAN("pool-block");
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    }));
    begin = end;
  }
  // Drain EVERY block before rethrowing: bailing on the first failed get()
  // would return control (and destroy `fn`'s referents) while later blocks
  // are still executing — a use-after-return race on the caller's stack.
  // Futures are visited in block order, so the earliest failing block's
  // exception is the one the caller sees.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace cdpf::support

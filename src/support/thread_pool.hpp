// Minimal RAII worker pool for deterministic data parallelism.
//
// Lives in support (the bottom layer) so both the simulation driver's
// Monte-Carlo trial parallelism and the core filter kernels' intra-iteration
// sharding can use it without layering violations. Per the C++ Core
// Guidelines concurrency rules the pool owns its threads for its whole
// lifetime (joined in the destructor, never detached), tasks communicate
// only through the returned futures, and callers share no mutable state
// between tasks — each trial derives its own RNG stream and each kernel
// shard writes pre-sized disjoint output slots, so results are independent
// of the worker count and of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cdpf::support {

class ThreadPool {
 public:
  /// `workers` = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([packaged]() { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  /// Indices are dispatched as contiguous block-range tasks (a handful per
  /// worker) rather than one queue entry per index, so the per-index cost is
  /// a direct call instead of a mutex round-trip — the difference between
  /// usable and useless for the filter kernels' ~10 microsecond shards.
  /// Exceptions from tasks are rethrown (the first one encountered, in block
  /// order); the remaining indices of a throwing block are skipped, other
  /// blocks still run.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cdpf::support

#include "support/check.hpp"

#include <sstream>

namespace cdpf::detail {

void throw_check_failure(const char* expr, const std::string& message,
                         std::source_location loc) {
  std::ostringstream os;
  os << "CDPF_CHECK failed: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line();
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace cdpf::detail

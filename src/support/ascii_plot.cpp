#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/table.hpp"

namespace cdpf::support {

AsciiPlot::AsciiPlot(double x0, double x1, double y0, double y1, std::size_t cols,
                     std::size_t rows)
    : x0_(x0), x1_(x1), y0_(y0), y1_(y1), cols_(cols), rows_(rows) {
  CDPF_CHECK_MSG(x1 > x0 && y1 > y0, "plot window must be non-degenerate");
  CDPF_CHECK_MSG(cols >= 2 && rows >= 2, "plot raster must be at least 2x2");
  raster_.assign(rows_, std::string(cols_, ' '));
}

void AsciiPlot::point(double x, double y, char glyph) {
  if (x < x0_ || x > x1_ || y < y0_ || y > y1_) {
    return;
  }
  const auto c = static_cast<std::size_t>(std::min(
      (x - x0_) / (x1_ - x0_) * static_cast<double>(cols_ - 1),
      static_cast<double>(cols_ - 1)));
  // Rows render top-down; world y grows upward.
  const auto r = static_cast<std::size_t>(std::min(
      (y1_ - y) / (y1_ - y0_) * static_cast<double>(rows_ - 1),
      static_cast<double>(rows_ - 1)));
  raster_[r][c] = glyph;
}

void AsciiPlot::polyline(const std::vector<std::pair<double, double>>& points,
                         char glyph) {
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const auto [ax, ay] = points[i];
    const auto [bx, by] = points[i + 1];
    const double length = std::hypot(bx - ax, by - ay);
    const double cell = std::min((x1_ - x0_) / static_cast<double>(cols_),
                                 (y1_ - y0_) / static_cast<double>(rows_));
    const int steps = std::max(1, static_cast<int>(std::ceil(length / cell)));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      point(ax + (bx - ax) * t, ay + (by - ay) * t, glyph);
    }
  }
  if (points.size() == 1) {
    point(points[0].first, points[0].second, glyph);
  }
}

std::string AsciiPlot::render() const {
  std::ostringstream os;
  os << '+' << std::string(cols_, '-') << "+  y=" << format_double(y1_, 0) << '\n';
  for (const std::string& row : raster_) {
    os << '|' << row << "|\n";
  }
  os << '+' << std::string(cols_, '-') << "+  y=" << format_double(y0_, 0) << '\n';
  os << " x=" << format_double(x0_, 0) << std::string(cols_ > 12 ? cols_ - 12 : 0, ' ')
     << "x=" << format_double(x1_, 0) << '\n';
  return os.str();
}

}  // namespace cdpf::support

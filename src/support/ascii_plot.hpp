// Terminal rendering of 2-D tracks: a character raster of the surveillance
// field with one glyph per series (trajectory, estimates, ...). Used by the
// Figure-4 bench and the examples so a run can be eyeballed without leaving
// the terminal.
#pragma once

#include <string>
#include <vector>

namespace cdpf::support {

class AsciiPlot {
 public:
  /// World window [x0, x1] x [y0, y1] rendered onto a cols x rows raster.
  AsciiPlot(double x0, double x1, double y0, double y1, std::size_t cols = 100,
            std::size_t rows = 30);

  /// Plot one point with the given glyph; later series overwrite earlier
  /// ones where they collide. Points outside the window are ignored.
  void point(double x, double y, char glyph);

  /// Plot a polyline (dense interpolation between consecutive points).
  void polyline(const std::vector<std::pair<double, double>>& points, char glyph);

  /// Render with a simple border and axis labels.
  std::string render() const;

 private:
  double x0_, x1_, y0_, y1_;
  std::size_t cols_, rows_;
  std::vector<std::string> raster_;
};

}  // namespace cdpf::support

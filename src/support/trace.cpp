#include "support/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

namespace cdpf::support {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-thread event storage. Owned by the registry (so events survive the
/// recording thread), written by exactly one thread while a session is
/// active, and read only after stop() or under the registry lock.
struct ThreadBuffer {
  std::vector<TraceEvent> events;  // reserved to capacity at registration
  std::size_t dropped = 0;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;  // guards buffers/capacity/epoch; never on the hot path
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = Trace::kDefaultCapacity;
  Clock::time_point epoch{};
  // Session generation: bumped by start() so threads holding a pointer into
  // a previous session's buffer list re-register instead of writing stale
  // storage. The flag is the fast-path gate; both are relaxed because the
  // session boundary is externally synchronized (a session is started
  // before the traced work is handed to worker threads).
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> active{false};
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local std::uint64_t t_generation = 0;

/// The calling thread's buffer for the current session, registering (and
/// allocating, once per thread per session) on first use.
ThreadBuffer* local_buffer() {
  Registry& r = registry();
  const std::uint64_t generation = r.generation.load(std::memory_order_relaxed);
  if (t_buffer != nullptr && t_generation == generation) {
    return t_buffer;
  }
  std::lock_guard lock(r.mutex);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->events.reserve(r.capacity);
  buffer->tid = static_cast<std::uint32_t>(r.buffers.size());
  t_buffer = buffer.get();
  t_generation = generation;
  r.buffers.push_back(std::move(buffer));
  return t_buffer;
}

void record(const char* name, char phase, std::uint64_t ts_ns, std::uint64_t dur_ns,
            double value) {
  ThreadBuffer* buffer = local_buffer();
  if (buffer->events.size() >= buffer->events.capacity()) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back({name, phase, buffer->tid, ts_ns, dur_ns, value});
}

/// Minimal JSON string escaping. Span names are lint-enforced kebab-case
/// literals, but counter/instant names from future call sites stay safe.
void write_escaped(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}

}  // namespace

void Trace::start(std::size_t events_per_thread) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.buffers.clear();
  r.capacity = events_per_thread > 0 ? events_per_thread : 1;
  r.epoch = Clock::now();
  r.generation.fetch_add(1, std::memory_order_relaxed);
  r.active.store(true, std::memory_order_release);
}

void Trace::stop() { registry().active.store(false, std::memory_order_release); }

bool Trace::active() {
  return registry().active.load(std::memory_order_relaxed);
}

std::uint64_t Trace::now_ns() {
  const Registry& r = registry();
  if (r.epoch == Clock::time_point{}) {
    return 0;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - r.epoch)
          .count());
}

void Trace::record_span(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!active()) {
    return;
  }
  record(name, 'X', ts_ns, dur_ns, 0.0);
}

void Trace::record_instant(const char* name) {
  if (!active()) {
    return;
  }
  record(name, 'i', now_ns(), 0, 0.0);
}

void Trace::record_counter(const char* name, double value) {
  if (!active()) {
    return;
  }
  record(name, 'C', now_ns(), 0, value);
}

std::vector<TraceEvent> Trace::events() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<TraceEvent> out;
  for (const auto& buffer : r.buffers) {
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::size_t Trace::dropped() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::size_t total = 0;
  for (const auto& buffer : r.buffers) {
    total += buffer->dropped;
  }
  return total;
}

bool Trace::write_chrome_json(const std::string& path) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  // Chrome trace format: timestamps and durations in fractional
  // microseconds; "i" events carry a thread ("t") scope.
  out << "{\"traceEvents\":[";
  bool first = true;
  std::size_t dropped_total = 0;
  for (const auto& buffer : r.buffers) {
    dropped_total += buffer->dropped;
    for (const TraceEvent& e : buffer->events) {
      if (!first) {
        out << ",";
      }
      first = false;
      out << "\n{\"name\":\"";
      write_escaped(out, e.name);
      out << "\",\"cat\":\"cdpf\",\"ph\":\"" << e.phase
          << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
          << static_cast<double>(e.ts_ns) / 1e3;
      if (e.phase == 'X') {
        out << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
      } else if (e.phase == 'i') {
        out << ",\"s\":\"t\"";
      } else if (e.phase == 'C') {
        out << ",\"args\":{\"value\":" << e.value << "}";
      }
      out << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\""
      << dropped_total << "\"}}\n";
  return static_cast<bool>(out);
}

bool Trace::write_jsonl(const std::string& path) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  for (const auto& buffer : r.buffers) {
    for (const TraceEvent& e : buffer->events) {
      out << "{\"name\":\"";
      write_escaped(out, e.name);
      out << "\",\"ph\":\"" << e.phase << "\",\"tid\":" << e.tid
          << ",\"ts_ns\":" << e.ts_ns;
      if (e.phase == 'X') {
        out << ",\"dur_ns\":" << e.dur_ns;
      } else if (e.phase == 'C') {
        out << ",\"value\":" << e.value;
      }
      out << "}\n";
    }
  }
  return static_cast<bool>(out);
}

}  // namespace cdpf::support

#include "support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>

namespace cdpf::support {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void write_escaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}

}  // namespace

const MetricsSnapshot::Entry* MetricsSnapshot::find(std::string_view name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.entries.reserve(after.entries.size());
  for (const Entry& entry : after.entries) {
    Entry d = entry;
    const Entry* base = before.find(entry.name);
    if (base != nullptr && base->kind == entry.kind) {
      if (entry.kind == MetricKind::kCounter) {
        d.count = entry.count - std::min(base->count, entry.count);
      } else if (entry.kind == MetricKind::kHistogram) {
        d.count = entry.count - std::min(base->count, entry.count);
        d.value = entry.value - base->value;
        for (std::size_t i = 0;
             i < d.buckets.size() && i < base->buckets.size(); ++i) {
          d.buckets[i] -= std::min(base->buckets[i], d.buckets[i]);
        }
      }
      // Gauges pass through: a level, not a flow.
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"cdpf-metrics/1\",\"metrics\":[";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"name\":\"";
    write_escaped(out, entry.name);
    out << "\",\"kind\":\"" << kind_name(entry.kind) << "\"";
    if (!entry.unit.empty()) {
      out << ",\"unit\":\"";
      write_escaped(out, entry.unit);
      out << "\"";
    }
    if (entry.kind == MetricKind::kCounter) {
      out << ",\"count\":" << entry.count;
    } else if (entry.kind == MetricKind::kGauge) {
      out << ",\"value\":" << entry.value;
    } else {
      out << ",\"count\":" << entry.count << ",\"sum\":" << entry.value
          << ",\"bounds\":[";
      for (std::size_t i = 0; i < entry.bounds.size(); ++i) {
        out << (i > 0 ? "," : "") << entry.bounds[i];
      }
      out << "],\"buckets\":[";
      for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
        out << (i > 0 ? "," : "") << entry.buckets[i];
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool MetricsSnapshot::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

MetricsRegistry::Id MetricsRegistry::get_or_create(std::string_view name,
                                                   std::string_view unit,
                                                   MetricKind kind,
                                                   std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  const Id id = cells_.size();
  Cell& cell = cells_.emplace_back();
  cell.name.assign(name);
  cell.unit.assign(unit);
  cell.kind = kind;
  cell.bounds = std::move(bounds);
  if (kind == MetricKind::kHistogram) {
    // +1: terminal overflow bucket for samples above the last bound.
    for (std::size_t i = 0; i < cell.bounds.size() + 1; ++i) {
      cell.buckets.emplace_back(0);
    }
  }
  by_name_.emplace(cell.name, id);
  return id;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name,
                                             std::string_view unit) {
  return get_or_create(name, unit, MetricKind::kCounter, {});
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name,
                                           std::string_view unit) {
  return get_or_create(name, unit, MetricKind::kGauge, {});
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name,
                                               std::vector<double> bounds,
                                               std::string_view unit) {
  return get_or_create(name, unit, MetricKind::kHistogram, std::move(bounds));
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  cells_[id].count.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(Id id, double value) {
  cells_[id].value_bits.store(std::bit_cast<std::uint64_t>(value),
                              std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id id, double value) {
  Cell& cell = cells_[id];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  // Sum as fixed-point nanounits would lose range; the histogram sum is the
  // one value that is *not* order-exact under concurrency, so accumulate it
  // with a CAS loop over the double payload and document the caveat in
  // DESIGN.md §8 (counter exactness is what the acceptance bar needs).
  std::uint64_t expected = cell.value_bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(expected);
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(current + value);
    if (cell.value_bits.compare_exchange_weak(expected, desired,
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  std::size_t bucket = cell.bounds.size();  // terminal overflow bucket
  for (std::size_t i = 0; i < cell.bounds.size(); ++i) {
    if (value <= cell.bounds[i]) {
      bucket = i;
      break;
    }
  }
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.entries.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    MetricsSnapshot::Entry entry;
    entry.name = cell.name;
    entry.unit = cell.unit;
    entry.kind = cell.kind;
    entry.count = cell.count.load(std::memory_order_relaxed);
    entry.value =
        std::bit_cast<double>(cell.value_bits.load(std::memory_order_relaxed));
    entry.bounds = cell.bounds;
    entry.buckets.reserve(cell.buckets.size());
    for (const auto& bucket : cell.buckets) {
      entry.buckets.push_back(bucket.load(std::memory_order_relaxed));
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Cell& cell : cells_) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.value_bits.store(0, std::memory_order_relaxed);
    for (auto& bucket : cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace cdpf::support

// Bit-granular I/O buffers for the adaptive-encoding DPF (Ing & Coates):
// measurement messages are packed as variable-length codewords, so the
// communication accounting needs exact bit counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdpf::support {

class BitWriter {
 public:
  /// Append the lowest `count` bits of `bits`, most significant first.
  void write(std::uint64_t bits, std::size_t count);

  std::size_t bit_count() const { return bit_count_; }
  /// Bits rounded up to whole bytes (what a radio frame would carry).
  std::size_t byte_count() const { return (bit_count_ + 7) / 8; }

  /// Finished buffer, zero-padded in the last byte.
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& buffer, std::size_t bit_count);

  /// Read `count` bits (most significant first). Throws cdpf::Error when
  /// reading past the end.
  std::uint64_t read(std::size_t count);

  /// Read a single bit.
  bool read_bit() { return read(1) != 0; }

  std::size_t remaining_bits() const { return bit_count_ - position_; }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t bit_count_;
  std::size_t position_ = 0;
};

}  // namespace cdpf::support

#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace cdpf::support {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CDPF_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CDPF_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table::RowBuilder& Table::RowBuilder::cell(long long value) {
  return cell(std::to_string(value));
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  return cell(std::to_string(value));
}

void Table::commit_row(RowBuilder& builder) {
  add_row(std::move(builder.cells_));
  builder.cells_.clear();
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& headers,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_ascii() const {
  const auto widths = column_widths(headers_, rows_);
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) {
      os << ' ' << cell << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "---|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  CDPF_CHECK_MSG(out.is_open(), "cannot open CSV output file: " + path);
  out << to_csv();
}

}  // namespace cdpf::support

#include "support/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace cdpf::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
  CDPF_CHECK(argc >= 1);
  program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    CDPF_CHECK_MSG(arg.rfind("--", 0) == 0, "positional argument not supported: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> CliArgs::get_string(const std::string& name) {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<double> CliArgs::get_double(const std::string& name) {
  const auto text = get_string(name);
  if (!text) {
    return std::nullopt;
  }
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  CDPF_CHECK_MSG(end != text->c_str() && *end == '\0', "--" + name + " expects a number");
  return value;
}

std::optional<long long> CliArgs::get_int(const std::string& name) {
  const auto text = get_string(name);
  if (!text) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long value = std::strtoll(text->c_str(), &end, 10);
  CDPF_CHECK_MSG(end != text->c_str() && *end == '\0', "--" + name + " expects an integer");
  return value;
}

std::optional<bool> CliArgs::get_bool(const std::string& name) {
  const auto text = get_string(name);
  if (!text) {
    return std::nullopt;
  }
  if (*text == "true" || *text == "1" || *text == "yes") {
    return true;
  }
  if (*text == "false" || *text == "0" || *text == "no") {
    return false;
  }
  throw Error("--" + name + " expects a boolean, got: " + *text);
}

std::optional<std::vector<double>> CliArgs::get_double_list(const std::string& name) {
  const auto text = get_string(name);
  if (!text) {
    return std::nullopt;
  }
  std::vector<double> values;
  std::istringstream is(*text);
  std::string token;
  while (std::getline(is, token, ',')) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    CDPF_CHECK_MSG(end != token.c_str() && *end == '\0',
                   "--" + name + " expects comma-separated numbers");
    values.push_back(value);
  }
  CDPF_CHECK_MSG(!values.empty(), "--" + name + " list is empty");
  return values;
}

std::optional<std::vector<std::string>> CliArgs::get_string_list(
    const std::string& name) {
  const auto text = get_string(name);
  if (!text) {
    return std::nullopt;
  }
  std::vector<std::string> values;
  std::istringstream is(*text);
  std::string token;
  while (std::getline(is, token, ',')) {
    CDPF_CHECK_MSG(!token.empty(), "--" + name + " has an empty list element");
    values.push_back(token);
  }
  CDPF_CHECK_MSG(!values.empty(), "--" + name + " list is empty");
  return values;
}

void CliArgs::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    CDPF_CHECK_MSG(queried_.contains(name), "unknown flag: --" + name);
  }
}

}  // namespace cdpf::support

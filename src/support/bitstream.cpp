#include "support/bitstream.hpp"

#include "support/check.hpp"

namespace cdpf::support {

void BitWriter::write(std::uint64_t bits, std::size_t count) {
  CDPF_CHECK_MSG(count <= 64, "can write at most 64 bits at a time");
  for (std::size_t i = count; i-- > 0;) {
    const bool bit = (bits >> i) & 1ULL;
    const std::size_t byte_index = bit_count_ / 8;
    if (byte_index == buffer_.size()) {
      buffer_.push_back(0);
    }
    if (bit) {
      buffer_[byte_index] |= static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    }
    ++bit_count_;
  }
}

BitReader::BitReader(const std::vector<std::uint8_t>& buffer, std::size_t bit_count)
    : buffer_(buffer), bit_count_(bit_count) {
  CDPF_CHECK_MSG(bit_count <= buffer.size() * 8, "bit count exceeds the buffer");
}

std::uint64_t BitReader::read(std::size_t count) {
  CDPF_CHECK_MSG(count <= 64, "can read at most 64 bits at a time");
  CDPF_CHECK_MSG(position_ + count <= bit_count_, "read past the end of the stream");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t byte_index = position_ / 8;
    const bool bit = ((buffer_[byte_index] >> (7 - position_ % 8)) & 1) != 0;
    value = (value << 1) | (bit ? 1ULL : 0ULL);
    ++position_;
  }
  return value;
}

}  // namespace cdpf::support
